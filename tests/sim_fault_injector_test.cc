#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/events.h"
#include "sim/simulator.h"

namespace fluidfaas::sim {
namespace {

/// One published fault command, flattened for comparison.
struct Command {
  std::string kind;
  SimTime at = 0;
  std::int32_t target = -1;  // iid or slice; -1 for armed faults

  bool operator==(const Command&) const = default;
};

/// Runs an injector against an otherwise empty simulation and collects
/// every fault command it publishes. `instances` pre-populates the live
/// instance set via the same bus events the platform would emit.
std::vector<Command> Collect(const FaultPlan& plan, int instances = 4) {
  Simulator sim;
  std::vector<Command> out;
  sim.bus().Subscribe<InstanceCrashRequested>(
      [&](const InstanceCrashRequested& e) {
        out.push_back({"crash", e.at, e.iid.value});
      });
  sim.bus().Subscribe<SliceFailureRequested>(
      [&](const SliceFailureRequested& e) {
        out.push_back({"slice", e.at, e.slice.value});
      });
  sim.bus().Subscribe<ColdStartFailureArmed>(
      [&](const ColdStartFailureArmed& e) {
        out.push_back({"cold", e.at, -1});
      });
  sim.bus().Subscribe<SlowStartArmed>(
      [&](const SlowStartArmed& e) { out.push_back({"slow", e.at, -1}); });

  FaultInjector injector(sim, plan);
  injector.Start();
  for (int i = 0; i < instances; ++i) {
    sim.bus().Publish(SliceBound{SliceId(i), InstanceId(i), 0});
  }
  sim.Run();
  EXPECT_EQ(injector.injected(),
            injector.injected(FaultKind::kInstanceCrash) +
                injector.injected(FaultKind::kSliceFailure) +
                injector.injected(FaultKind::kColdStartFailure) +
                injector.injected(FaultKind::kSlowStart));
  // Commands naming dead entities are swallowed, never minted from thin
  // air: published count can only be at or below the injection count.
  EXPECT_LE(out.size(), injector.injected());
  return out;
}

FaultPlan BusyPlan(std::uint64_t seed) {
  FaultPlan plan;
  plan.rate = 2.0;  // ~60 faults over the horizon
  plan.seed = seed;
  plan.horizon = Seconds(30);
  plan.num_slices = 8;
  return plan;
}

TEST(FaultInjectorTest, RateZeroIsAStrictNoOp) {
  Simulator sim;
  FaultInjector injector(sim, FaultPlan{});  // rate == 0
  injector.Start();
  EXPECT_FALSE(injector.running());
  EXPECT_EQ(injector.injected(), 0u);
  // No subscriptions: instance-lifecycle traffic is not even observed.
  sim.bus().Publish(SliceBound{SliceId(0), InstanceId(0), 0});
  EXPECT_EQ(injector.tracked_instances(), 0u);
  // No timers: the simulation has nothing to run.
  EXPECT_EQ(sim.Run(), 0u);
}

TEST(FaultInjectorTest, SameSeedReplaysTheSameSchedule) {
  const auto a = Collect(BusyPlan(7));
  const auto b = Collect(BusyPlan(7));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FaultInjectorTest, DifferentSeedsDisagree) {
  const auto a = Collect(BusyPlan(7));
  const auto b = Collect(BusyPlan(8));
  EXPECT_NE(a, b);
}

TEST(FaultInjectorTest, VictimPoolDoesNotPerturbTheClock) {
  // Determinism across schedulers requires the injector to consume the
  // same RNG stream whether or not victims exist: the command *times*
  // must match even when the live-instance population differs.
  const auto with = Collect(BusyPlan(7), /*instances=*/4);
  const auto none = Collect(BusyPlan(7), /*instances=*/0);
  std::vector<SimTime> with_times, none_times;
  for (const Command& c : with) {
    if (c.kind != "crash") with_times.push_back(c.at);
  }
  for (const Command& c : none) {
    ASSERT_NE(c.kind, "crash");  // nobody to crash
    none_times.push_back(c.at);
  }
  EXPECT_EQ(with_times, none_times);
}

TEST(FaultInjectorTest, RespectsTheHorizon) {
  const FaultPlan plan = BusyPlan(11);
  for (const Command& c : Collect(plan)) {
    EXPECT_LT(c.at, plan.horizon) << c.kind;
  }
}

TEST(FaultInjectorTest, StopCancelsPendingInjectionAndDetaches) {
  Simulator sim;
  std::size_t published = 0;
  sim.bus().Subscribe<InstanceCrashRequested>(
      [&](const InstanceCrashRequested&) { ++published; });
  sim.bus().Subscribe<SliceFailureRequested>(
      [&](const SliceFailureRequested&) { ++published; });
  sim.bus().Subscribe<ColdStartFailureArmed>(
      [&](const ColdStartFailureArmed&) { ++published; });
  sim.bus().Subscribe<SlowStartArmed>(
      [&](const SlowStartArmed&) { ++published; });

  FaultInjector injector(sim, BusyPlan(3));
  injector.Start();
  EXPECT_TRUE(injector.running());
  sim.bus().Publish(SliceBound{SliceId(0), InstanceId(0), 0});
  EXPECT_EQ(injector.tracked_instances(), 1u);

  injector.Stop();
  EXPECT_FALSE(injector.running());
  EXPECT_EQ(injector.tracked_instances(), 0u);  // victim pool dropped
  sim.bus().Publish(SliceBound{SliceId(1), InstanceId(1), 0});
  EXPECT_EQ(injector.tracked_instances(), 0u);  // no longer listening
  sim.Run();
  EXPECT_EQ(published, 0u);
  EXPECT_EQ(injector.injected(), 0u);
}

TEST(FaultInjectorTest, TracksInstanceLifecycleThroughTheBus) {
  Simulator sim;
  FaultInjector injector(sim, BusyPlan(5));
  injector.Start();
  EXPECT_EQ(injector.tracked_instances(), 0u);

  sim.bus().Publish(SliceBound{SliceId(0), InstanceId(7), 0});
  sim.bus().Publish(SliceBound{SliceId(1), InstanceId(7), 0});  // 2nd stage
  sim.bus().Publish(SliceBound{SliceId(2), InstanceId(9), 0});
  EXPECT_EQ(injector.tracked_instances(), 2u);

  InstanceStateChanged retire;
  retire.iid = InstanceId(7);
  retire.from = InstancePhase::kDraining;
  retire.to = InstancePhase::kRetired;
  sim.bus().Publish(retire);
  EXPECT_EQ(injector.tracked_instances(), 1u);

  InstanceStateChanged fail;
  fail.iid = InstanceId(9);
  fail.from = InstancePhase::kReady;
  fail.to = InstancePhase::kFailed;
  sim.bus().Publish(fail);
  EXPECT_EQ(injector.tracked_instances(), 0u);
}

}  // namespace
}  // namespace fluidfaas::sim
