#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace fluidfaas::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, AtAdvancesClockToEventTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.At(Seconds(2), [&] { observed = sim.Now(); });
  sim.Run();
  EXPECT_EQ(observed, Seconds(2));
  EXPECT_EQ(sim.Now(), Seconds(2));
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.At(100, [&] {
    sim.After(50, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 150);
}

TEST(SimulatorTest, CannotScheduleIntoPast) {
  Simulator sim;
  sim.At(100, [&] { EXPECT_THROW(sim.At(50, [] {}), FfsError); });
  sim.Run();
}

TEST(SimulatorTest, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.After(-1, [] {}), FfsError);
}

TEST(SimulatorTest, RunUntilStopsAtHorizonInclusive) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] { ++fired; });
  sim.At(20, [&] { ++fired; });
  sim.At(21, [&] { ++fired; });
  const auto n = sim.RunUntil(20);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulatorTest, ClockNeverGoesBackwardsAfterHorizon) {
  Simulator sim;
  sim.RunUntil(100);
  sim.At(150, [] {});
  sim.RunUntil(50);  // horizon before now: no-op
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, EventsCascade) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.After(10, recurse);
  };
  sim.After(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), 40);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.At(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StepExecutesAtMostOne) {
  Simulator sim;
  int fired = 0;
  sim.At(1, [&] { ++fired; });
  sim.At(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(PeriodicTaskTest, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, 100, [&] { fires.push_back(sim.Now()); });
  task.Start(50);
  sim.RunUntil(500);
  EXPECT_EQ(fires, (std::vector<SimTime>{50, 150, 250, 350, 450}));
}

TEST(PeriodicTaskTest, StopHaltsFutureFires) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 10, [&] {
    if (++count == 3) task.Stop();
  });
  task.Start(0);
  sim.RunUntil(1000);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, DoubleStartThrows) {
  Simulator sim;
  PeriodicTask task(sim, 10, [] {});
  task.Start(0);
  EXPECT_THROW(task.Start(0), FfsError);
}

TEST(PeriodicTaskTest, DestructorCancelsPending) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, 10, [&] { ++count; });
    task.Start(5);
    sim.RunUntil(25);
  }
  sim.RunUntil(1000);
  EXPECT_EQ(count, 3);  // fires at 5, 15, 25 only
}

TEST(SimulatorTest, DeterministicEventCountAcrossRuns) {
  auto run = [] {
    Simulator sim;
    int x = 0;
    for (int i = 0; i < 100; ++i) {
      sim.At(i % 7, [&x] { ++x; });
    }
    sim.Run();
    return sim.events_executed();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace fluidfaas::sim
