#include "tools/cli_args.h"

#include <gtest/gtest.h>

namespace fluidfaas::tools {
namespace {

std::vector<char*> Argv(std::vector<std::string>& storage) {
  std::vector<char*> out;
  for (auto& s : storage) out.push_back(s.data());
  return out;
}

TEST(CliArgsTest, ParsesKeyValuePairs) {
  std::vector<std::string> raw = {"prog", "cmd", "--tier", "heavy",
                                  "--nodes", "4", "--load", "0.5"};
  auto argv = Argv(raw);
  CliArgs args(static_cast<int>(argv.size()), argv.data(), 2,
               {"tier", "nodes", "load"});
  EXPECT_EQ(args.GetString("tier", "x"), "heavy");
  EXPECT_EQ(args.GetInt("nodes", 0), 4);
  EXPECT_DOUBLE_EQ(args.GetDouble("load", 0.0), 0.5);
  EXPECT_TRUE(args.Has("tier"));
  EXPECT_FALSE(args.Has("seed"));
}

TEST(CliArgsTest, DefaultsWhenAbsent) {
  std::vector<std::string> raw = {"prog", "cmd"};
  auto argv = Argv(raw);
  CliArgs args(static_cast<int>(argv.size()), argv.data(), 2, {"tier"});
  EXPECT_EQ(args.GetString("tier", "medium"), "medium");
  EXPECT_EQ(args.GetInt("tier", 7), 7);
  EXPECT_DOUBLE_EQ(args.GetDouble("tier", 1.5), 1.5);
}

TEST(CliArgsTest, RejectsUnknownFlag) {
  std::vector<std::string> raw = {"prog", "cmd", "--bogus", "1"};
  auto argv = Argv(raw);
  EXPECT_THROW(
      CliArgs(static_cast<int>(argv.size()), argv.data(), 2, {"tier"}),
      FfsError);
}

TEST(CliArgsTest, RejectsMissingValue) {
  std::vector<std::string> raw = {"prog", "cmd", "--tier"};
  auto argv = Argv(raw);
  EXPECT_THROW(
      CliArgs(static_cast<int>(argv.size()), argv.data(), 2, {"tier"}),
      FfsError);
}

TEST(CliArgsTest, RejectsBareValue) {
  std::vector<std::string> raw = {"prog", "cmd", "heavy"};
  auto argv = Argv(raw);
  EXPECT_THROW(
      CliArgs(static_cast<int>(argv.size()), argv.data(), 2, {"tier"}),
      FfsError);
}

TEST(CliArgsTest, RejectsNonNumericValues) {
  std::vector<std::string> raw = {"prog", "cmd", "--nodes", "four"};
  auto argv = Argv(raw);
  CliArgs args(static_cast<int>(argv.size()), argv.data(), 2, {"nodes"});
  EXPECT_THROW(args.GetInt("nodes", 0), FfsError);
  EXPECT_THROW(args.GetDouble("nodes", 0.0), FfsError);
}

TEST(CliArgsTest, LastOccurrenceWins) {
  std::vector<std::string> raw = {"prog", "cmd", "--seed", "1", "--seed",
                                  "2"};
  auto argv = Argv(raw);
  CliArgs args(static_cast<int>(argv.size()), argv.data(), 2, {"seed"});
  EXPECT_EQ(args.GetInt("seed", 0), 2);
}

}  // namespace
}  // namespace fluidfaas::tools
