#include "trace/azure_loader.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "common/error.h"

namespace fluidfaas::trace {
namespace {

std::string SampleCsv() {
  // Three functions, 4 minute buckets each (abbreviated dataset shape).
  return "HashOwner,HashApp,HashFunction,Trigger,1,2,3,4\n"
         "o1,a1,f_hot,http,100,200,150,50\n"
         "o1,a1,f_warm,timer,10,0,5,5\n"
         "o2,a2,f_cold,queue,0,1,0,0\n";
}

TEST(AzureLoaderTest, ParsesRowsAndTotals) {
  std::stringstream in(SampleCsv());
  auto rows = LoadAzureDataset(in);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].function_hash, "f_hot");
  EXPECT_EQ(rows[0].trigger, "http");
  EXPECT_EQ(rows[0].per_minute, (std::vector<int>{100, 200, 150, 50}));
  EXPECT_EQ(rows[0].total, 500u);
  EXPECT_EQ(rows[2].total, 1u);
}

TEST(AzureLoaderTest, RejectsWrongHeader) {
  std::stringstream in("time_us,function_id\n1,2\n");
  EXPECT_THROW(LoadAzureDataset(in), FfsError);
}

TEST(AzureLoaderTest, RejectsMalformedCounts) {
  std::stringstream in(
      "HashOwner,HashApp,HashFunction,Trigger,1,2\no,a,f,http,3,oops\n");
  EXPECT_THROW(LoadAzureDataset(in), FfsError);
}

TEST(AzureLoaderTest, EmptyBucketsAreZero) {
  std::stringstream in(
      "HashOwner,HashApp,HashFunction,Trigger,1,2,3\no,a,f,http,5,,7\n");
  auto rows = LoadAzureDataset(in);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].per_minute, (std::vector<int>{5, 0, 7}));
  EXPECT_EQ(rows[0].total, 12u);
}

// Regression: every malformed-input failure carries the typed
// ErrorCode::kMalformedTrace so callers can dispatch on code() instead of
// parsing message strings.
template <typename Fn>
ErrorCode CodeOf(Fn&& fn) {
  try {
    fn();
  } catch (const FfsError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected FfsError";
  return ErrorCode::kGeneric;
}

TEST(AzureLoaderTest, TypedErrorOnWrongHeader) {
  std::stringstream in("time_us,function_id\n1,2\n");
  EXPECT_EQ(CodeOf([&] { LoadAzureDataset(in); }),
            ErrorCode::kMalformedTrace);
}

TEST(AzureLoaderTest, TypedErrorOnTruncatedRow) {
  // Only two of the four required metadata fields.
  std::stringstream in("HashOwner,HashApp,HashFunction,Trigger,1\no,a\n");
  EXPECT_EQ(CodeOf([&] { LoadAzureDataset(in); }),
            ErrorCode::kMalformedTrace);
}

TEST(AzureLoaderTest, TypedErrorOnNonNumericAndNegativeCounts) {
  std::stringstream bad(
      "HashOwner,HashApp,HashFunction,Trigger,1,2\no,a,f,http,3,oops\n");
  EXPECT_EQ(CodeOf([&] { LoadAzureDataset(bad); }),
            ErrorCode::kMalformedTrace);
  std::stringstream neg(
      "HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http,-4\n");
  EXPECT_EQ(CodeOf([&] { LoadAzureDataset(neg); }),
            ErrorCode::kMalformedTrace);
}

TEST(AzureLoaderTest, TypedErrorOnTooManyBuckets) {
  std::string row = "o,a,f,http";
  for (int i = 0; i < 1441; ++i) row += ",1";
  std::stringstream in("HashOwner,HashApp,HashFunction,Trigger\n" + row +
                       "\n");
  EXPECT_EQ(CodeOf([&] { LoadAzureDataset(in); }),
            ErrorCode::kMalformedTrace);
}

TEST(AzureLoaderTest, TypedErrorOnEmptyInput) {
  std::stringstream in("");
  EXPECT_EQ(CodeOf([&] { LoadAzureDataset(in); }),
            ErrorCode::kMalformedTrace);
}

TEST(AzureLoaderTest, ToleratesCrlfLineEndings) {
  std::stringstream in(
      "HashOwner,HashApp,HashFunction,Trigger,1,2\r\no,a,f,http,3,4\r\n");
  auto rows = LoadAzureDataset(in);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].per_minute, (std::vector<int>{3, 4}));
  EXPECT_EQ(rows[0].trigger, "http");
}

TEST(AzureExpandTest, VolumeMatchesBucketsAndRankingOrdersIds) {
  std::stringstream in(SampleCsv());
  auto rows = LoadAzureDataset(in);
  AzureExpandOptions opt;
  opt.num_functions = 2;  // top-2: f_hot, f_warm
  opt.minutes = 4;
  opt.count_scale = 1.0;
  const Trace t = ExpandAzureDataset(rows, opt);

  std::map<std::int32_t, int> per_fn;
  for (const auto& inv : t) per_fn[inv.fn.value]++;
  EXPECT_EQ(per_fn[0], 500);  // f_hot -> FunctionId(0)
  EXPECT_EQ(per_fn[1], 20);   // f_warm -> FunctionId(1)
  EXPECT_EQ(per_fn.count(2), 0u);  // f_cold not selected
}

TEST(AzureExpandTest, ArrivalsStayInsideTheirMinuteBuckets) {
  std::stringstream in(
      "HashOwner,HashApp,HashFunction,Trigger,1,2\no,a,f,http,0,30\n");
  auto rows = LoadAzureDataset(in);
  AzureExpandOptions opt;
  opt.num_functions = 1;
  opt.minutes = 2;
  const Trace t = ExpandAzureDataset(rows, opt);
  ASSERT_EQ(t.size(), 30u);
  for (const auto& inv : t) {
    EXPECT_GE(inv.time, Seconds(60));   // bucket 1 is empty
    EXPECT_LT(inv.time, Seconds(120));  // all mass in bucket 2
  }
  // Sorted.
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t[i].time, t[i - 1].time);
  }
}

TEST(AzureExpandTest, CountScaleScalesExpectedVolume) {
  std::stringstream in(SampleCsv());
  auto rows = LoadAzureDataset(in);
  AzureExpandOptions opt;
  opt.num_functions = 1;
  opt.minutes = 4;
  opt.count_scale = 0.1;
  opt.seed = 99;
  const Trace t = ExpandAzureDataset(rows, opt);
  // Expected 50 arrivals (500 x 0.1); stochastic rounding keeps it close.
  EXPECT_NEAR(static_cast<double>(t.size()), 50.0, 15.0);
}

TEST(AzureExpandTest, DeterministicForSeed) {
  std::stringstream in1(SampleCsv()), in2(SampleCsv());
  auto r1 = LoadAzureDataset(in1);
  auto r2 = LoadAzureDataset(in2);
  AzureExpandOptions opt;
  opt.seed = 31;
  EXPECT_EQ(ExpandAzureDataset(r1, opt), ExpandAzureDataset(r2, opt));
}

TEST(AzureExpandTest, RejectsDegenerateOptions) {
  std::stringstream in(SampleCsv());
  auto rows = LoadAzureDataset(in);
  AzureExpandOptions opt;
  opt.num_functions = 0;
  EXPECT_THROW(ExpandAzureDataset(rows, opt), FfsError);
  opt = AzureExpandOptions{};
  opt.count_scale = 0.0;
  EXPECT_THROW(ExpandAzureDataset(rows, opt), FfsError);
  EXPECT_THROW(ExpandAzureDataset({}, AzureExpandOptions{}), FfsError);
}

}  // namespace
}  // namespace fluidfaas::trace
