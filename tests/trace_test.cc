#include "trace/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/error.h"
#include "common/stats.h"

namespace fluidfaas::trace {
namespace {

TEST(PopularitySharesTest, SumToOneAndDeterministic) {
  auto a = PopularityShares(8, 1.2, 42);
  auto b = PopularityShares(8, 1.2, 42);
  EXPECT_EQ(a, b);
  EXPECT_NEAR(std::accumulate(a.begin(), a.end(), 0.0), 1.0, 1e-12);
  for (double s : a) EXPECT_GT(s, 0.0);
}

TEST(PopularitySharesTest, DifferentSeedsDiffer) {
  EXPECT_NE(PopularityShares(4, 1.2, 1), PopularityShares(4, 1.2, 2));
}

TEST(PoissonArrivalsTest, HomogeneousRateMatches) {
  Rng rng(5);
  auto arrivals =
      PoissonArrivals([](double) { return 50.0; }, 50.0, Seconds(200), rng);
  EXPECT_NEAR(static_cast<double>(arrivals.size()) / 200.0, 50.0, 2.5);
  // Sorted, in range.
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], arrivals[i - 1]);
  }
  EXPECT_GE(arrivals.front(), 0);
  EXPECT_LT(arrivals.back(), Seconds(200));
}

TEST(PoissonArrivalsTest, ThinningFollowsRateFunction) {
  Rng rng(6);
  // Rate 100 in the first half, 0 in the second.
  auto arrivals = PoissonArrivals(
      [](double t) { return t < 50.0 ? 100.0 : 0.0; }, 100.0, Seconds(100),
      rng);
  for (SimTime t : arrivals) EXPECT_LT(t, Seconds(50));
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 5000.0, 250.0);
}

TEST(PoissonArrivalsTest, ZeroCapacityYieldsNothing) {
  Rng rng(7);
  EXPECT_TRUE(
      PoissonArrivals([](double) { return 0.0; }, 0.0, Seconds(10), rng)
          .empty());
}

TEST(AzureLikeTraceTest, DeterministicForSeed) {
  AzureLikeParams p;
  p.total_rps = 20.0;
  p.duration = Seconds(60);
  p.seed = 99;
  const Trace a = AzureLikeTrace(4, p);
  EXPECT_EQ(a, AzureLikeTrace(4, p));
  p.seed = 100;
  EXPECT_NE(a, AzureLikeTrace(4, p));
}

TEST(AzureLikeTraceTest, MeanRateConvergesToTarget) {
  AzureLikeParams p;
  p.total_rps = 40.0;
  p.duration = Seconds(600);
  p.seed = 7;
  const Trace t = AzureLikeTrace(4, p);
  EXPECT_NEAR(MeanRps(t, p.duration), 40.0, 6.0);
}

TEST(AzureLikeTraceTest, SortedAndWithinDuration) {
  AzureLikeParams p;
  p.total_rps = 30.0;
  p.duration = Seconds(120);
  const Trace t = AzureLikeTrace(3, p);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t[i].time, t[i - 1].time);
  }
  for (const Invocation& inv : t) {
    EXPECT_GE(inv.time, 0);
    EXPECT_LT(inv.time, p.duration);
    EXPECT_GE(inv.fn.value, 0);
    EXPECT_LT(inv.fn.value, 3);
  }
}

TEST(AzureLikeTraceTest, PopularityIsHeavyTailed) {
  AzureLikeParams p;
  p.total_rps = 50.0;
  p.duration = Seconds(300);
  p.seed = 21;
  const Trace t = AzureLikeTrace(6, p);
  std::vector<std::size_t> counts(6, 0);
  for (const auto& inv : t) counts[static_cast<std::size_t>(inv.fn.value)]++;
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  // Pareto shares: the most popular function dominates the least popular.
  EXPECT_GT(*mx, 3 * std::max<std::size_t>(*mn, 1));
}

TEST(AzureLikeTraceTest, BurstsModulateShortWindows) {
  AzureLikeParams p;
  p.total_rps = 40.0;
  p.duration = Seconds(600);
  p.seed = 3;
  const Trace t = AzureLikeTrace(1, p);  // single function: pure burst view
  // Per-10s window counts should vary well beyond Poisson noise.
  std::vector<double> windows(60, 0.0);
  for (const auto& inv : t) {
    windows[static_cast<std::size_t>(ToSeconds(inv.time) / 10.0)] += 1.0;
  }
  EXPECT_GT(CoefficientOfVariation(windows), 0.2);
}

TEST(CsvTest, RoundTrips) {
  Trace t = {{Seconds(1), FunctionId(2)},
             {Seconds(2), FunctionId(0)},
             {Seconds(2) + 5, FunctionId(1)}};
  std::stringstream ss;
  SaveCsv(t, ss);
  const Trace back = LoadCsv(ss);
  EXPECT_EQ(back, t);
}

TEST(CsvTest, LoaderSortsAndSkipsHeader) {
  std::stringstream ss(
      "time_us,function_id\n3000000,1\n1000000,0\n\n2000000,2\n");
  const Trace t = LoadCsv(ss);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].time, Seconds(1));
  EXPECT_EQ(t[2].fn, FunctionId(1));
}

TEST(CsvTest, MalformedLineThrows) {
  std::stringstream ss("12345\n");
  EXPECT_THROW(LoadCsv(ss), FfsError);
}

TEST(MeanRpsTest, Basics) {
  Trace t = {{0, FunctionId(0)}, {1, FunctionId(0)}};
  EXPECT_DOUBLE_EQ(MeanRps(t, Seconds(2)), 1.0);
  EXPECT_DOUBLE_EQ(MeanRps(t, 0), 0.0);
}

}  // namespace
}  // namespace fluidfaas::trace
