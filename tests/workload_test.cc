#include "trace/workload.h"

#include <gtest/gtest.h>

#include "model/zoo.h"

namespace fluidfaas::trace {
namespace {

gpu::Cluster PaperCluster() {
  return gpu::Cluster::Uniform(2, 8, gpu::DefaultPartition());
}

TEST(WorkloadTest, TierVariantMapping) {
  EXPECT_EQ(VariantOf(WorkloadTier::kLight), model::Variant::kSmall);
  EXPECT_EQ(VariantOf(WorkloadTier::kMedium), model::Variant::kMedium);
  EXPECT_EQ(VariantOf(WorkloadTier::kHeavy), model::Variant::kLarge);
  EXPECT_STREQ(Name(WorkloadTier::kLight), "light");
  EXPECT_STREQ(Name(WorkloadTier::kHeavy), "heavy");
}

TEST(WorkloadTest, FunctionSetsFollowStudyInclusion) {
  gpu::Cluster cluster = PaperCluster();
  WorkloadParams p;
  p.duration = Seconds(10);
  EXPECT_EQ(MakeWorkload(WorkloadTier::kLight, cluster, p).functions.size(),
            4u);
  EXPECT_EQ(MakeWorkload(WorkloadTier::kMedium, cluster, p).functions.size(),
            4u);
  // App 3 large is excluded.
  EXPECT_EQ(MakeWorkload(WorkloadTier::kHeavy, cluster, p).functions.size(),
            3u);
}

TEST(WorkloadTest, OfferedRateScalesWithClusterAndFactor) {
  gpu::Cluster big = PaperCluster();
  gpu::Cluster small = gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition());
  WorkloadParams p;
  p.duration = Seconds(30);
  const Workload wb = MakeWorkload(WorkloadTier::kLight, big, p);
  const Workload ws = MakeWorkload(WorkloadTier::kLight, small, p);
  EXPECT_NEAR(wb.offered_rps / ws.offered_rps, 8.0, 1e-6);  // 16 vs 2 GPUs
  EXPECT_GT(wb.ideal_rps, wb.offered_rps);

  p.load_factor = 0.8;
  const Workload dense = MakeWorkload(WorkloadTier::kLight, big, p);
  EXPECT_NEAR(dense.offered_rps, 0.8 * dense.ideal_rps, 1e-6);
}

TEST(WorkloadTest, TraceMatchesOfferedRate) {
  gpu::Cluster cluster = PaperCluster();
  WorkloadParams p;
  p.duration = Seconds(300);
  const Workload w = MakeWorkload(WorkloadTier::kMedium, cluster, p);
  EXPECT_NEAR(MeanRps(w.trace, p.duration), w.offered_rps,
              0.2 * w.offered_rps);
  for (const Invocation& inv : w.trace) {
    EXPECT_GE(inv.fn.value, 0);
    EXPECT_LT(static_cast<std::size_t>(inv.fn.value), w.functions.size());
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  gpu::Cluster cluster = PaperCluster();
  WorkloadParams p;
  p.duration = Seconds(30);
  p.seed = 5;
  const Workload a = MakeWorkload(WorkloadTier::kLight, cluster, p);
  const Workload b = MakeWorkload(WorkloadTier::kLight, cluster, p);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.offered_rps, b.offered_rps);
}

TEST(WorkloadTest, TierLoadFactorsAreOrdered) {
  // Light is the headroom tier.
  EXPECT_LT(DefaultLoadFactor(WorkloadTier::kLight),
            DefaultLoadFactor(WorkloadTier::kMedium));
}

TEST(WorkloadTest, FunctionSpecsCarryTierVariant) {
  gpu::Cluster cluster = PaperCluster();
  WorkloadParams p;
  p.duration = Seconds(10);
  const Workload w = MakeWorkload(WorkloadTier::kHeavy, cluster, p);
  for (const auto& f : w.functions) {
    EXPECT_EQ(f.variant, model::Variant::kLarge);
    EXPECT_GT(f.slo, 0);
  }
}

}  // namespace
}  // namespace fluidfaas::trace
