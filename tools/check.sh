#!/usr/bin/env bash
# Tier-1 verification, plain and sanitized.
#
# Runs the ROADMAP.md tier-1 check (configure + build + ctest) twice: once
# in the default build tree, once with FFS_SANITIZE=ON (AddressSanitizer +
# UBSan), plus a fault-injection smoke that exercises the failure-recovery
# paths (crash harvesting, retries, slice repair, timeout expiry) under the
# sanitizers. Usage:
#
#   tools/check.sh          # all passes
#   tools/check.sh plain    # default build only
#   tools/check.sh asan     # sanitized build only
#   tools/check.sh faults   # sanitized fault-sweep smoke only
#   tools/check.sh tsan     # ThreadSanitizer parallel-sweep smoke only
#   tools/check.sh tidy     # clang-tidy over src/ (fails if not installed)
#
# Parallelism: -j N after the mode, else FFS_JOBS, else nproc.
#
#   tools/check.sh plain -j 4
#   FFS_JOBS=8 tools/check.sh tidy
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-all}"
jobs="${FFS_JOBS:-$(nproc 2>/dev/null || echo 4)}"
if [[ "${2:-}" == "-j" ]]; then
  jobs="${3:?-j needs a job count}"
fi
case "${jobs}" in
  ''|*[!0-9]*|0)
    echo "error: job count must be a positive integer, got '${jobs}'" >&2
    exit 2
    ;;
esac

run_pass() {
  local dir="$1"; shift
  echo "=== ${dir}: cmake $* ==="
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

# Shortened fault sweep under ASan/UBSan: the recovery machinery moves a lot
# of in-flight state between instances, slices and timers, exactly where
# lifetime bugs would hide.
run_faults() {
  echo "=== build-asan: fault-injection smoke ==="
  cmake -B build-asan -S . -DFFS_SANITIZE=ON
  cmake --build build-asan -j "${jobs}" --target fault_sweep
  ( cd build-asan && FFS_BENCH_DURATION_S=10 \
      FFS_FAULT_SWEEP_OUT=fault_sweep_smoke.json ./bench/fault_sweep )
}

# Short parallel sweep under ThreadSanitizer: several worker threads run
# shared-nothing RunContexts concurrently while resolving schedulers through
# the mutex-guarded registry and logging through the shared sink — exactly
# the surfaces a data race would hit. TSan halts with a non-zero exit on the
# first report, so a green run means zero reports.
run_tsan() {
  echo "=== build-tsan: parallel sweep smoke under ThreadSanitizer ==="
  cmake -B build-tsan -S . -DFFS_TSAN=ON
  cmake --build build-tsan -j "${jobs}" --target fluidfaas
  ( cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ./tools/fluidfaas sweep --tiers light --duration 20 \
        --seeds 1,2 --jobs 4 --out sweep_tsan_smoke.json )
}

# Static analysis with the checked-in .clang-tidy (bugprone-*, performance-*,
# readability-container-size-empty). An explicit `check.sh tidy` fails
# loudly when clang-tidy is missing — a green "pass" that never ran is worse
# than an error. Only the aggregate `all` mode soft-skips (with a warning),
# so the minimal toolchain image can still run every other pass.
run_tidy() {
  local soft="${1:-hard}"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    if [[ "${soft}" == "soft" ]]; then
      echo "=== tidy: WARNING — clang-tidy not installed, pass SKIPPED ===" >&2
      return 0
    fi
    echo "error: clang-tidy is not installed; refusing to pretend the tidy" \
         "pass ran (use 'check.sh all' to soft-skip it)" >&2
    return 1
  fi
  echo "=== tidy: clang-tidy over src/ (jobs=${jobs}) ==="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  local files
  files=$(find src -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086  # intentional word-splitting of the file list
    run-clang-tidy -p build -quiet -j "${jobs}" ${files}
  else
    # No run-clang-tidy wrapper: shard the file list across ${jobs} parallel
    # clang-tidy processes ourselves so -j/FFS_JOBS is honored either way.
    # shellcheck disable=SC2086
    printf '%s\n' ${files} | xargs -P "${jobs}" -n 8 clang-tidy -p build --quiet
  fi
}

case "${mode}" in
  plain)  run_pass build ;;
  asan)   run_pass build-asan -DFFS_SANITIZE=ON ;;
  faults) run_faults ;;
  tsan)   run_tsan ;;
  tidy)   run_tidy ;;
  all)
    run_pass build
    run_pass build-asan -DFFS_SANITIZE=ON
    run_faults
    run_tsan
    run_tidy soft
    ;;
  *)
    echo "usage: tools/check.sh [plain|asan|all|faults|tsan|tidy] [-j N]" >&2
    exit 2
    ;;
esac
echo "=== check.sh: all requested passes green ==="
