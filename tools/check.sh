#!/usr/bin/env bash
# Tier-1 verification, plain and sanitized.
#
# Runs the ROADMAP.md tier-1 check (configure + build + ctest) twice: once
# in the default build tree, once with FFS_SANITIZE=ON (AddressSanitizer +
# UBSan). Usage:
#
#   tools/check.sh          # both passes
#   tools/check.sh plain    # default build only
#   tools/check.sh asan     # sanitized build only
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode="${1:-all}"

run_pass() {
  local dir="$1"; shift
  echo "=== ${dir}: cmake $* ==="
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

case "${mode}" in
  plain) run_pass build ;;
  asan)  run_pass build-asan -DFFS_SANITIZE=ON ;;
  all)
    run_pass build
    run_pass build-asan -DFFS_SANITIZE=ON
    ;;
  *)
    echo "usage: tools/check.sh [plain|asan|all]" >&2
    exit 2
    ;;
esac
echo "=== check.sh: all requested passes green ==="
