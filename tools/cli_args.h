// Minimal `--key value` command-line parsing for the fluidfaas CLI.
// Flags may appear in any order; unknown keys are rejected up front so
// typos fail loudly instead of silently using defaults.
#pragma once

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"

namespace fluidfaas::tools {

class CliArgs {
 public:
  /// Parse argv[first..): alternating "--key value" pairs. `allowed`
  /// is the full set of recognized keys (without the leading dashes).
  CliArgs(int argc, char** argv, int first,
          const std::set<std::string>& allowed) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw FfsError("expected --flag, got: " + key);
      }
      key = key.substr(2);
      if (!allowed.count(key)) {
        throw FfsError("unknown flag: --" + key);
      }
      if (i + 1 >= argc) {
        throw FfsError("missing value for --" + key);
      }
      values_[key] = argv[++i];
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::istringstream ss(it->second);
    double v;
    if (!(ss >> v)) throw FfsError("--" + key + " expects a number");
    return v;
  }

  long GetInt(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::istringstream ss(it->second);
    long v;
    if (!(ss >> v)) throw FfsError("--" + key + " expects an integer");
    return v;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace fluidfaas::tools
