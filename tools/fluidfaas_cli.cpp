// fluidfaas — command-line front end for the simulator.
//
//   fluidfaas run   [--tier light|medium|heavy] [--system fluidfaas|esg|
//                    infless|repartition|all] [--nodes N] [--gpus N]
//                    [--duration SECONDS] [--load FRACTION] [--seed N]
//                    [--partition SPEC] [--csv FILE] [--trace-out FILE]
//                    [--fault-rate R] [--fault-seed N] [--mttr SECONDS]
//                    [--timeout-scale S] [--queue fifo|fair|edf]
//                    [--admission none|shed] [--rate RPS] [--queue-cap N]
//                    [--jobs N]
//   fluidfaas sweep [--systems a,b,...|all] [--tiers light,medium,...]
//                    [--seeds 1,2,...] [--loads 0.2,0.5,...]
//                    [--fault-rates 0,0.01,...] [--nodes N] [--gpus N]
//                    [--duration SECONDS] [--queue fifo|fair|edf]
//                    [--admission none|shed] [--jobs N] [--out FILE]
//                    [--no-timing 1]
//   fluidfaas trace [--functions N] [--rps R] [--duration SECONDS]
//                    [--seed N] [--out FILE]
//   fluidfaas plan  [--app 0..3 | --llm 7b|13b|34b]
//                    [--variant small|medium|large] [--stages N]
//   fluidfaas partitions
//
// `run` replays a synthesized Azure-like trace through the chosen
// platform(s) and prints the comparison table; `--csv` additionally dumps
// per-request records and `--trace-out` writes a Chrome-trace JSON of the
// run (load it in chrome://tracing or https://ui.perfetto.dev; single
// system only). `sweep` executes a declarative grid (system × tier × seed
// × load × fault rate) on a worker pool — deterministic output at any
// --jobs — and writes the BENCH_sweep.json artifact. `plan` prints the
// CV-ranked pipeline candidates for one application. `partitions`
// enumerates every maximal A100 MIG configuration under the placement
// rules. Both multi-run commands honor --jobs / FFS_JOBS (default:
// hardware threads).
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/sweep.h"

#include "core/partitioner.h"
#include "harness/experiment.h"
#include "harness/json_report.h"
#include "metrics/report.h"
#include "model/llm.h"
#include "model/zoo.h"
#include "tools/cli_args.h"
#include "trace/azure_loader.h"
#include "trace/trace.h"

using namespace fluidfaas;
using tools::CliArgs;

namespace {

int Usage() {
  std::cout <<
      "usage: fluidfaas <run|sweep|trace|plan|partitions> [--flag value ...]\n"
      "  run        replay a workload through one or all platforms\n"
      "  sweep      run a system/tier/seed/load/fault-rate grid in parallel\n"
      "  trace      synthesize an Azure-like invocation trace (CSV)\n"
      "  plan       show CV-ranked pipeline candidates for an application\n"
      "  partitions enumerate maximal A100 MIG configurations\n"
      "See the header of tools/fluidfaas_cli.cpp for the full flag list.\n";
  return 2;
}

trace::WorkloadTier ParseTier(const std::string& s) {
  if (s == "light") return trace::WorkloadTier::kLight;
  if (s == "medium") return trace::WorkloadTier::kMedium;
  if (s == "heavy") return trace::WorkloadTier::kHeavy;
  throw FfsError("unknown tier: " + s);
}

harness::SystemKind ParseSystem(const std::string& s) {
  if (s == "fluidfaas") return harness::SystemKind::kFluidFaas;
  if (s == "esg") return harness::SystemKind::kEsg;
  if (s == "infless") return harness::SystemKind::kInfless;
  if (s == "repartition") return harness::SystemKind::kRepartition;
  if (s == "distributed") return harness::SystemKind::kFluidFaasDistributed;
  throw FfsError("unknown system: " + s);
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int ParseJobs(const CliArgs& args) {
  const long jobs = args.GetInt("jobs", 0);
  if (args.Has("jobs") && jobs < 1) {
    throw FfsError("--jobs must be a positive integer");
  }
  return static_cast<int>(jobs);  // 0 = FFS_JOBS / hardware default
}

int CmdRun(const CliArgs& args) {
  harness::ExperimentConfig cfg;
  cfg.tier = ParseTier(args.GetString("tier", "medium"));
  cfg.num_nodes = static_cast<int>(args.GetInt("nodes", 2));
  cfg.gpus_per_node = static_cast<int>(args.GetInt("gpus", 8));
  cfg.duration = Seconds(args.GetDouble("duration", 150.0));
  cfg.load_factor = args.GetDouble("load", 0.0);
  cfg.seed = static_cast<std::uint64_t>(args.GetInt("seed", 1234));
  if (args.Has("partition")) {
    const auto part = gpu::MigPartition::Parse(args.GetString("partition", ""));
    cfg.partitions.assign(
        static_cast<std::size_t>(cfg.num_nodes),
        std::vector<gpu::MigPartition>(
            static_cast<std::size_t>(cfg.gpus_per_node), part));
  }

  if (args.Has("trace")) {
    std::ifstream in(args.GetString("trace", ""));
    FFS_CHECK_MSG(in.good(), "cannot open trace file");
    cfg.custom_trace = trace::LoadCsv(in);
    std::cout << "replaying " << cfg.custom_trace.size()
              << " invocations from " << args.GetString("trace", "") << "\n";
  }

  cfg.trace_out = args.GetString("trace-out", "");

  // Deterministic fault injection: mean faults/s of simulated time across
  // the cluster; 0 (the default) runs exactly the fault-free simulation.
  cfg.faults.rate = args.GetDouble("fault-rate", 0.0);
  cfg.faults.seed = static_cast<std::uint64_t>(args.GetInt("fault-seed", 0));
  cfg.faults.mttr = Seconds(args.GetDouble("mttr", 30.0));
  cfg.faults.timeout_scale = args.GetDouble("timeout-scale", 0.0);

  // QoS queue policy (DESIGN.md §9). The defaults (fifo/none) reproduce the
  // legacy pending queue exactly, so plain runs stay byte-identical.
  cfg.platform.qos.queue = args.GetString("queue", "fifo");
  cfg.platform.qos.admission = args.GetString("admission", "none");
  cfg.platform.qos.rate_rps = args.GetDouble("rate", 0.0);
  cfg.platform.qos.max_queue_depth =
      static_cast<std::size_t>(args.GetInt("queue-cap", 0));

  const std::string system = args.GetString("system", "all");
  std::vector<harness::ExperimentResult> results;
  if (system == "all") {
    FFS_CHECK_MSG(cfg.trace_out.empty(),
                  "--trace-out requires a single --system (not 'all')");
    results = harness::RunComparison(cfg, ParseJobs(args));
  } else {
    cfg.system = ParseSystem(system);
    results.push_back(harness::RunExperiment(cfg));
    if (!cfg.trace_out.empty()) {
      std::cout << "Chrome trace written to " << cfg.trace_out << "\n";
    }
  }

  metrics::Table table({"system", "completed", "throughput", "SLO hit",
                        "P50", "P95", "MIG time", "GPU time"});
  for (const auto& r : results) {
    auto lats = r.recorder->LatenciesSeconds();
    const double p50 = lats.empty() ? 0.0 : Percentile(lats, 0.5);
    const double p95 = lats.empty() ? 0.0 : Percentile(lats, 0.95);
    table.AddRow({r.system,
                  std::to_string(r.recorder->completed_requests()) + "/" +
                      std::to_string(r.recorder->total_requests()),
                  metrics::Fmt(r.throughput_rps, 1) + " rps",
                  metrics::FmtPercent(r.slo_hit_rate),
                  metrics::Fmt(p50, 2) + "s", metrics::Fmt(p95, 2) + "s",
                  metrics::Fmt(ToSeconds(r.mig_time), 0) + "s",
                  metrics::Fmt(ToSeconds(r.gpu_time), 0) + "s"});
  }
  std::cout << trace::Name(cfg.tier) << " workload, " << cfg.num_nodes
            << " node(s) x " << cfg.gpus_per_node << " GPU(s), "
            << ToSeconds(cfg.duration) << "s simulated\n";
  table.Print();

  metrics::Table placement({"system", "plans", "committed", "aborted",
                            "spawns", "conflict rate", "top abort cause"});
  for (const auto& r : results) {
    // Dominant abort cause, or "-" when every plan committed.
    std::size_t worst = 0;
    const char* worst_name = "-";
    for (int c = 1; c < sim::kNumPlanAbortCauses; ++c) {
      const std::size_t n =
          r.plan_aborts_by_cause[static_cast<std::size_t>(c)];
      if (n > worst) {
        worst = n;
        worst_name = sim::Name(static_cast<sim::PlanAbortCause>(c));
      }
    }
    placement.AddRow({r.system,
                      std::to_string(r.plans_committed + r.plans_aborted),
                      std::to_string(r.plans_committed),
                      std::to_string(r.plans_aborted),
                      std::to_string(r.spawns_committed),
                      metrics::FmtPercent(r.plan_conflict_rate), worst_name});
  }
  std::cout << "placement transactions:\n";
  placement.Print();

  if (cfg.faults.rate > 0.0) {
    metrics::Table faults({"system", "goodput", "failed inst", "failed slc",
                           "retries", "recovered", "timeouts", "abandoned"});
    for (const auto& r : results) {
      faults.AddRow({r.system, metrics::Fmt(r.goodput_rps, 1) + " rps",
                     std::to_string(r.instances_failed),
                     std::to_string(r.slices_failed),
                     std::to_string(r.retries), std::to_string(r.recovered),
                     std::to_string(r.timeouts),
                     std::to_string(r.abandoned)});
    }
    std::cout << "faults: rate " << cfg.faults.rate << "/s, mttr "
              << ToSeconds(cfg.faults.mttr) << "s, timeout scale "
              << cfg.faults.timeout_scale << "\n";
    faults.Print();
  }

  // QoS table only when a non-default queue policy is active, mirroring the
  // fault table's gating: default runs print exactly what they always did.
  if (cfg.platform.qos.queue != "fifo" ||
      cfg.platform.qos.admission != "none") {
    metrics::Table qos({"system", "rejected", "queue-full", "rate-limited",
                        "infeasible", "mean depth", "jain", "worst-fn p99"});
    for (const auto& r : results) {
      qos.AddRow(
          {r.system, std::to_string(r.rejected),
           std::to_string(r.rejects_by_cause[static_cast<std::size_t>(
               sim::RejectCause::kQueueFull)]),
           std::to_string(r.rejects_by_cause[static_cast<std::size_t>(
               sim::RejectCause::kRateLimited)]),
           std::to_string(r.rejects_by_cause[static_cast<std::size_t>(
               sim::RejectCause::kDeadlineInfeasible)]),
           metrics::Fmt(r.mean_queue_depth, 2),
           metrics::Fmt(r.jain_fairness, 3),
           metrics::Fmt(r.worst_fn_p99_s, 2) + "s"});
    }
    std::cout << "qos: queue " << cfg.platform.qos.queue << ", admission "
              << cfg.platform.qos.admission << "\n";
    qos.Print();
  }

  if (args.Has("json")) {
    const std::string path = args.GetString("json", "");
    std::ofstream out(path);
    FFS_CHECK_MSG(out.good(), "cannot write " + path);
    out << harness::ResultsToJson(results) << "\n";
    std::cout << "JSON summary written to " << path << "\n";
  }

  if (args.Has("csv")) {
    const std::string path = args.GetString("csv", "");
    std::ofstream out(path);
    FFS_CHECK_MSG(out.good(), "cannot write " + path);
    out << "system,request,function,arrival_us,deadline_us,completion_us,"
           "queue_us,load_us,exec_us,transfer_us,slo_hit\n";
    for (const auto& r : results) {
      for (const auto& rec : r.recorder->records()) {
        out << r.system << "," << rec.id.value << "," << rec.fn.value << ","
            << rec.arrival << "," << rec.deadline << "," << rec.completion
            << "," << rec.queue_time << "," << rec.load_time << ","
            << rec.exec_time << "," << rec.transfer_time << ","
            << (rec.SloHit() ? 1 : 0) << "\n";
      }
    }
    std::cout << "per-request records written to " << path << "\n";
  }
  return 0;
}

// `sweep`: declarative grid over tier x load x fault-rate x seed x system,
// executed by the parallel sweep engine. Cells print (and land in the JSON
// artifact) in grid order regardless of --jobs, so output is reproducible.
int CmdSweep(const CliArgs& args) {
  harness::SweepSpec spec;
  spec.base.num_nodes = static_cast<int>(args.GetInt("nodes", 2));
  spec.base.gpus_per_node = static_cast<int>(args.GetInt("gpus", 8));
  spec.base.duration = Seconds(args.GetDouble("duration", 150.0));
  spec.base.seed = static_cast<std::uint64_t>(args.GetInt("seed", 1234));
  spec.base.platform.qos.queue = args.GetString("queue", "fifo");
  spec.base.platform.qos.admission = args.GetString("admission", "none");

  const std::string systems = args.GetString("systems", "all");
  if (systems == "all") {
    spec.systems = {harness::SystemKind::kInfless, harness::SystemKind::kEsg,
                    harness::SystemKind::kFluidFaas};
  } else {
    for (const auto& s : SplitCommas(systems)) {
      spec.systems.push_back(ParseSystem(s));
    }
  }
  for (const auto& t : SplitCommas(args.GetString("tiers", "medium"))) {
    spec.tiers.push_back(ParseTier(t));
  }
  for (const auto& s : SplitCommas(args.GetString("seeds", ""))) {
    spec.seeds.push_back(std::stoull(s));
  }
  for (const auto& l : SplitCommas(args.GetString("loads", ""))) {
    spec.load_factors.push_back(std::stod(l));
  }
  for (const auto& f : SplitCommas(args.GetString("fault-rates", ""))) {
    spec.fault_rates.push_back(std::stod(f));
  }
  FFS_CHECK_MSG(!spec.systems.empty() && !spec.tiers.empty(),
                "sweep needs at least one system and one tier");

  const harness::SweepOutcome sweep =
      harness::RunSweep(spec, ParseJobs(args));

  metrics::Table table({"tier", "load", "faults", "seed", "system",
                        "throughput", "SLO hit", "P95"});
  for (const auto& cell : sweep.cells) {
    const auto& r = cell.result;
    auto lats = r.recorder->LatenciesSeconds();
    const double p95 = lats.empty() ? 0.0 : Percentile(lats, 0.95);
    table.AddRow({r.tier,
                  cell.point.load_factor > 0.0
                      ? metrics::Fmt(cell.point.load_factor, 2)
                      : std::string("tier"),
                  metrics::Fmt(cell.point.fault_rate, 2),
                  std::to_string(cell.point.seed), r.system,
                  metrics::Fmt(r.throughput_rps, 1) + " rps",
                  metrics::FmtPercent(r.slo_hit_rate),
                  metrics::Fmt(p95, 2) + "s"});
  }
  std::cout << sweep.cells.size() << " cells, jobs=" << sweep.jobs << ", "
            << metrics::Fmt(sweep.wall_seconds, 2) << "s wall ("
            << metrics::Fmt(sweep.Speedup(), 2) << "x vs serial cell time)\n";
  table.Print();

  const bool timing = args.GetInt("no-timing", 0) == 0;
  const std::string path =
      args.Has("out") ? args.GetString("out", "")
                      : harness::SweepOutPath("BENCH_sweep.json");
  harness::WriteSweepJsonFile(sweep, path, timing);
  std::cout << "sweep artifact written to " << path << "\n";
  return 0;
}

int CmdTrace(const CliArgs& args) {
  if (args.Has("azure")) {
    // Convert a slice of the real Azure Functions dataset into our trace
    // CSV: fluidfaas trace --azure dNN.csv --functions 4 --minutes 5
    //        --scale 0.05 --out trace.csv
    std::ifstream in(args.GetString("azure", ""));
    FFS_CHECK_MSG(in.good(), "cannot open Azure dataset file");
    auto rows = trace::LoadAzureDataset(in);
    trace::AzureExpandOptions opt;
    opt.num_functions = static_cast<int>(args.GetInt("functions", 4));
    opt.minutes = static_cast<int>(args.GetInt("minutes", 5));
    opt.count_scale = args.GetDouble("scale", 1.0);
    opt.seed = static_cast<std::uint64_t>(args.GetInt("seed", 1234));
    const trace::Trace t = trace::ExpandAzureDataset(rows, opt);
    const std::string path = args.GetString("out", "");
    if (path.empty()) {
      trace::SaveCsv(t, std::cout);
    } else {
      std::ofstream out(path);
      FFS_CHECK_MSG(out.good(), "cannot write " + path);
      trace::SaveCsv(t, out);
      std::cout << rows.size() << " dataset functions -> top "
                << opt.num_functions << ", " << t.size()
                << " invocations written to " << path << "\n";
    }
    return 0;
  }
  trace::AzureLikeParams p;
  p.total_rps = args.GetDouble("rps", 20.0);
  p.duration = Seconds(args.GetDouble("duration", 300.0));
  p.seed = static_cast<std::uint64_t>(args.GetInt("seed", 1234));
  const int functions = static_cast<int>(args.GetInt("functions", 4));
  const trace::Trace t = trace::AzureLikeTrace(functions, p);

  const std::string path = args.GetString("out", "");
  if (path.empty()) {
    trace::SaveCsv(t, std::cout);
  } else {
    std::ofstream out(path);
    FFS_CHECK_MSG(out.good(), "cannot write " + path);
    trace::SaveCsv(t, out);
    std::cout << t.size() << " invocations ("
              << metrics::Fmt(trace::MeanRps(t, p.duration), 1)
              << " rps mean) written to " << path << "\n";
  }
  return 0;
}

int CmdPlan(const CliArgs& args) {
  model::AppDag dag;
  if (args.Has("llm")) {
    const std::string size = args.GetString("llm", "7b");
    if (size == "7b") dag = model::BuildLlmApp(model::LlmSize::k7B);
    else if (size == "13b") dag = model::BuildLlmApp(model::LlmSize::k13B);
    else if (size == "34b") dag = model::BuildLlmApp(model::LlmSize::k34B);
    else throw FfsError("unknown llm size: " + size);
  } else {
    const int app = static_cast<int>(args.GetInt("app", 0));
    const std::string v = args.GetString("variant", "medium");
    model::Variant variant = model::Variant::kMedium;
    if (v == "small") variant = model::Variant::kSmall;
    else if (v == "large") variant = model::Variant::kLarge;
    else if (v != "medium") throw FfsError("unknown variant: " + v);
    dag = model::BuildApp(app, variant);
  }
  const int stages = static_cast<int>(args.GetInt("stages", 4));

  std::cout << dag.name() << ": " << dag.size() << " components, "
            << metrics::Fmt(static_cast<double>(dag.TotalMemory()) / kGiB, 1)
            << " GB\n";
  const auto mono = core::MinMonolithicProfile(dag);
  const auto piped = core::MinPipelinedProfile(dag, stages);
  std::cout << "monolithic minimum: " << (mono ? gpu::Name(*mono) : "NONE")
            << ", pipelined minimum: " << (piped ? gpu::Name(*piped) : "NONE")
            << "\n\nranked candidates (Eq. 1):\n";
  for (const auto& c : core::EnumerateRankedPipelines(dag, stages)) {
    std::cout << "  " << core::ToString(c) << "\n";
  }
  return 0;
}

int CmdPartitions() {
  const auto parts = gpu::EnumerateMaximalPartitions();
  std::cout << parts.size()
            << " maximal A100 MIG configurations (placement-distinct):\n";
  for (const auto& p : parts) {
    std::cout << "  " << p.ToString() << "  (" << p.total_gpcs() << " GPCs, "
              << p.total_memory() / kGiB << " GB)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "run") {
      return CmdRun(CliArgs(argc, argv, 2,
                            {"tier", "system", "nodes", "gpus", "duration",
                             "load", "seed", "partition", "csv", "trace",
                             "json", "trace-out", "fault-rate", "fault-seed",
                             "mttr", "timeout-scale", "queue", "admission",
                             "rate", "queue-cap", "jobs"}));
    }
    if (cmd == "sweep") {
      return CmdSweep(CliArgs(argc, argv, 2,
                              {"systems", "tiers", "seeds", "loads",
                               "fault-rates", "nodes", "gpus", "duration",
                               "seed", "queue", "admission", "jobs", "out",
                               "no-timing"}));
    }
    if (cmd == "trace") {
      return CmdTrace(CliArgs(argc, argv, 2,
                              {"functions", "rps", "duration", "seed",
                               "out", "azure", "minutes", "scale"}));
    }
    if (cmd == "plan") {
      return CmdPlan(
          CliArgs(argc, argv, 2, {"app", "variant", "llm", "stages"}));
    }
    if (cmd == "partitions") {
      return CmdPartitions();
    }
    return Usage();
  } catch (const FfsError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
